//! F8: recursive types across languages (paper §3.2, Fig. 8).
//!
//! "We translate all homogeneous and ordered collections of indefinite
//! size into Recursive Mtypes. For example, the C array float[], whose
//! size is not known until runtime, would be represented by the Mtype of
//! Figure 8b, which is how a Java linked list is represented as well.
//! This implies that Mockingbird can generate adapters between these
//! types."

use mockingbird::values::MValue;
use mockingbird::{Mode, Session};

/// The Fig. 8a Java linked list, a C runtime-length array, an IDL
/// sequence and a Java Vector — all of `float`.
fn session() -> Session {
    let mut s = Session::new();
    s.load_java(
        "public class List {
           private float car;
           private List cdr;
         }
         public class FloatVector extends java.util.Vector;
         public class FloatBox { private float value; }",
    )
    .unwrap();
    s.load_c("typedef struct fnode { float car; struct fnode *cdr; } fnode;")
        .unwrap();
    s.load_idl("typedef sequence<float> floatseq;").unwrap();
    s
}

#[test]
fn fig8_java_list_mtype() {
    let mut s = session();
    s.annotate("annotate List.field(cdr) no-alias").unwrap();
    // Fig. 8b: Rec L. Record(Real, Choice(Unit, L)).
    assert_eq!(
        s.display_mtype("List").unwrap(),
        "Rec#L(Record(Real{24,8}, Choice(Unit, #L)))"
    );
}

#[test]
fn java_list_equals_idl_sequence_and_c_array() {
    let mut s = session();
    s.annotate(
        "annotate List.field(cdr) no-alias
         annotate FloatVector element=FloatBox non-null",
    )
    .unwrap();
    // The linked list Rec L. Record(Real, Choice(Unit, L)) and the
    // canonical sequence Rec L. Choice(Unit, Record(Real, L)) differ by
    // one unrolling of where the choice sits: the list starts with a
    // mandatory element. They are NOT equivalent (a list type that is
    // never empty vs one that may be) — the paper's Fig. 8 list is the
    // *nullable* list, i.e. Choice(Unit, List):
    let plan = {
        // A nullable reference to the Java list is exactly the sequence.
        s.load_java("public class ListRef { private List head; }")
            .unwrap();
        s.annotate("annotate ListRef.field(head) no-alias").unwrap();
        s.compare("ListRef", "floatseq", Mode::Equivalence)
    };
    let plan = plan.expect("Choice(Unit, List) ≅ sequence<float>");

    // Values convert both ways, as the paper claims adapters exist.
    let rust_list = MValue::Record(vec![MValue::List(vec![
        MValue::Real(1.5),
        MValue::Real(2.5),
        MValue::Real(3.5),
    ])]);
    // ListRef is Record(list); floatseq is the bare list.
    let seq = plan.convert(&rust_list).unwrap();
    assert_eq!(
        seq,
        MValue::List(vec![
            MValue::Real(1.5),
            MValue::Real(2.5),
            MValue::Real(3.5)
        ])
    );
    assert_eq!(plan.convert_back(&seq).unwrap(), rust_list);
}

#[test]
fn vector_subclass_equals_idl_sequence() {
    let mut s = session();
    s.annotate("annotate FloatVector element=FloatBox non-null")
        .unwrap();
    // FloatVector (elements are FloatBox = Record(Real) ≅ Real by unary
    // collapse) against sequence<float>.
    let plan = s
        .compare("FloatVector", "floatseq", Mode::Equivalence)
        .expect("an annotated Vector is an indefinite ordered collection");
    let v = MValue::List(vec![
        MValue::Record(vec![MValue::Real(1.0)]),
        MValue::Record(vec![MValue::Real(2.0)]),
    ]);
    assert_eq!(
        plan.convert(&v).unwrap(),
        MValue::List(vec![MValue::Real(1.0), MValue::Real(2.0)])
    );
}

#[test]
fn c_linked_list_struct_matches_java_list() {
    let mut s = session();
    s.annotate(
        "annotate List.field(cdr) no-alias
         annotate fnode.field(cdr) no-alias",
    )
    .unwrap();
    let plan = s
        .compare("List", "fnode", Mode::Equivalence)
        .expect("two spellings of the same recursive struct");
    // Convert an actual chain value (the Choice-chain form).
    let chain = MValue::Record(vec![
        MValue::Real(1.0),
        MValue::some(MValue::Record(vec![MValue::Real(2.0), MValue::null()])),
    ]);
    assert_eq!(
        plan.convert(&chain).unwrap(),
        chain,
        "identical layout passes through"
    );
}

#[test]
fn empty_and_long_collections_convert() {
    let mut s = session();
    s.annotate("annotate FloatVector element=FloatBox non-null")
        .unwrap();
    let plan = s
        .compare("FloatVector", "floatseq", Mode::Equivalence)
        .unwrap();
    assert_eq!(
        plan.convert(&MValue::List(vec![])).unwrap(),
        MValue::List(vec![])
    );
    let long: Vec<MValue> = (0..50_000)
        .map(|k| MValue::Record(vec![MValue::Real(k as f64)]))
        .collect();
    let out = plan.convert(&MValue::List(long)).unwrap();
    let MValue::List(items) = out else { panic!() };
    assert_eq!(items.len(), 50_000);
    assert_eq!(items[49_999], MValue::Real(49_999.0));
}

#[test]
fn mismatched_element_types_are_rejected() {
    let mut s = session();
    s.annotate("annotate FloatVector element=FloatBox non-null")
        .unwrap();
    s.load_idl("typedef sequence<double> doubleseq;").unwrap();
    assert!(s
        .compare("FloatVector", "doubleseq", Mode::Equivalence)
        .is_err());
    // But float ≤ double makes the one-way direction work.
    assert!(s.compare("FloatVector", "doubleseq", Mode::Subtype).is_ok());
}
