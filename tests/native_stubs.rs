//! Three-way differential suite for the second Futamura projection:
//! the emitted native marshal stubs must agree with the opcode VM and
//! the interpretive oracle — encode byte-for-byte, decode
//! value-for-value against the interpretive round trip — over the
//! canonical 64-seed property stream plus the adversarial shapes, in
//! both byte orders. Also covers the depth bound (hostile nesting must
//! fail identically on every tier), a zero-allocation check for native
//! encode over a pooled buffer, and the `RemoteStub` end-to-end path
//! (native tier resolved by fingerprint, metrics attributed).
//!
//! The stubs under test are the checked-in `generated_stubs.rs` the
//! bench crate carries; `mbc emit-stubs` regenerates it from the same
//! seed-pinned fixtures this suite reconstructs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mockingbird::comparer::{CacheKey, Comparer, Mode, RuleSet};
use mockingbird::corpus::{
    choice_heavy_pair, deep_list_pair, fitter_pair, property_pair, sample_value,
};
use mockingbird::mtype::{MtypeGraph, MtypeId};
use mockingbird::plan::CoercionPlan;
use mockingbird::runtime::{
    Dispatcher, InMemoryConnection, RemoteRef, RuntimeError, Servant, WireOp, WireServant,
};
use mockingbird::stubgen::{FunctionStub, RemoteStub};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::{
    nominal_fingerprint, CdrReader, CdrWriter, NativeKey, NativeProgramKind, NativeStub,
    NativeStubRegistry, WireProgram,
};
use mockingbird_bench::register_native_stubs;

/// Counts allocations so the zero-allocation property of native encode
/// over a pooled buffer is checkable (not just claimed).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const CASES: u64 = 64;

/// The emitted stub registered for a two-graph value pair, if any.
fn native_for(g: &MtypeGraph, h: &MtypeGraph, ty: MtypeId, var: MtypeId) -> Option<NativeStub> {
    let key = NativeKey {
        pair: CacheKey {
            left_fp: nominal_fingerprint(g, ty),
            right_fp: nominal_fingerprint(h, var),
            mode: Mode::Equivalence,
            rules_fp: RuleSet::full().fingerprint(),
        },
        kind: NativeProgramKind::Value,
    };
    NativeStubRegistry::global().lookup(&key)
}

fn plan_for(g: &MtypeGraph, h: &MtypeGraph, ty: MtypeId, var: MtypeId) -> CoercionPlan {
    let corr = Comparer::new(g, h)
        .compare(ty, var, Mode::Equivalence)
        .expect("fixture pairs must match");
    CoercionPlan::new(g, h, corr, RuleSet::full(), Mode::Equivalence)
}

/// One three-way agreement check: native and opcode encodings must
/// equal the interpretive bytes, and native and opcode decodes must
/// equal the interpretive round trip (which canonicalises values using
/// dedup-collapsed duplicate alternatives — the oracle, not the input,
/// is ground truth).
fn assert_three_way(
    plan: &CoercionPlan,
    program: &WireProgram,
    native: &NativeStub,
    v: &MValue,
    endian: Endian,
    what: &str,
) {
    let h = plan.right_graph();
    let converted = plan.convert(v).unwrap();
    let mut oracle = CdrWriter::new(endian);
    oracle.put_value(h, plan.right_root(), &converted).unwrap();
    let oracle = oracle.into_bytes();

    let mut w = CdrWriter::new(endian);
    program.encode_value(&mut w, v).unwrap();
    assert_eq!(w.into_bytes(), oracle, "{what}: opcode encode {endian:?}");
    let mut w = CdrWriter::new(endian);
    (native.encode.expect("value stubs emit encode"))(&mut w, v).unwrap();
    assert_eq!(w.into_bytes(), oracle, "{what}: native encode {endian:?}");

    let mut or = CdrReader::new(&oracle, endian);
    let wire = or.get_value(h, plan.right_root()).unwrap();
    let expected = plan.convert_back(&wire).unwrap();
    let mut r = CdrReader::new(&oracle, endian);
    assert_eq!(
        program.decode_value(&mut r).unwrap(),
        expected,
        "{what}: opcode decode {endian:?}"
    );
    let mut r = CdrReader::new(&oracle, endian);
    assert_eq!(
        (native.decode.expect("two-way stubs emit decode"))(&mut r).unwrap(),
        expected,
        "{what}: native decode {endian:?}"
    );
    assert_eq!(r.remaining(), 0, "{what}: native decode consumed all bytes");
}

/// Native ≡ opcode ≡ interpretive over the 64-seed property stream, in
/// both byte orders. Every pair the program compiler accepts must have
/// an emitted stub (the generated module was built from these seeds).
#[test]
fn native_stubs_agree_three_ways_across_the_property_stream() {
    register_native_stubs();
    let mut covered = 0usize;
    for seed in 0..CASES {
        let (g, h, ty, var, mut rng) = property_pair(seed);
        let plan = plan_for(&g, &h, ty, var);
        let Ok(program) = WireProgram::compile(&plan) else {
            // Declined pairs stay interpretive — no stub may be
            // registered for them.
            continue;
        };
        let native = native_for(&g, &h, ty, var)
            .unwrap_or_else(|| panic!("seed {seed}: compiled pair lacks an emitted stub"));
        covered += 1;
        for _round in 0..4 {
            let v = sample_value(&g, ty, &mut rng, 3);
            for endian in [Endian::Little, Endian::Big] {
                assert_three_way(
                    &plan,
                    &program,
                    &native,
                    &v,
                    endian,
                    &format!("seed {seed}"),
                );
            }
        }
    }
    assert!(
        covered >= CASES as usize / 2,
        "emitted stubs should cover most of the stream, got {covered}/{CASES}"
    );
}

/// The deliberately choice-heavy pair exercises nested dispatch trees
/// in the emitted `match` chains.
#[test]
fn native_stubs_agree_on_the_choice_heavy_pair() {
    register_native_stubs();
    let (g, h, ty, var) = choice_heavy_pair();
    let plan = plan_for(&g, &h, ty, var);
    let program = WireProgram::compile(&plan).expect("choice-heavy pair compiles");
    let native = native_for(&g, &h, ty, var).expect("choice-heavy stub is emitted");
    let mut rng = mockingbird_rng::StdRng::seed_from_u64(7);
    for _ in 0..16 {
        let v = sample_value(&g, ty, &mut rng, 4);
        for endian in [Endian::Little, Endian::Big] {
            assert_three_way(&plan, &program, &native, &v, endian, "choice-heavy");
        }
    }
}

/// `T = list(T)` values nest arbitrarily deep: within the bound all
/// three tiers agree; past it the native stub and the opcode VM must
/// fail with the *same* error (the emitted depth guards replicate the
/// VM's checks exactly).
#[test]
fn native_stubs_enforce_the_depth_bound_identically() {
    register_native_stubs();
    let (g, h, ty, var) = deep_list_pair();
    let plan = plan_for(&g, &h, ty, var);
    let program = WireProgram::compile(&plan).expect("recursive list pair compiles");
    let native = native_for(&g, &h, ty, var).expect("recursive list stub is emitted");

    // A list nested to `depth` levels: List([List([... List([])])]).
    let nested = |depth: usize| {
        let mut v = MValue::List(vec![]);
        for _ in 0..depth {
            v = MValue::List(vec![v]);
        }
        v
    };

    for endian in [Endian::Little, Endian::Big] {
        assert_three_way(&plan, &program, &native, &nested(64), endian, "deep-list");
    }

    let hostile = nested(1024);
    let mut w = CdrWriter::new(Endian::Little);
    let vm_err = program.encode_value(&mut w, &hostile).unwrap_err();
    let mut w = CdrWriter::new(Endian::Little);
    let native_err = (native.encode.unwrap())(&mut w, &hostile).unwrap_err();
    assert_eq!(
        native_err, vm_err,
        "hostile nesting must fail identically on both tiers"
    );
}

/// Native encode into a pooled, pre-sized buffer performs no heap
/// allocation: the emitted code reserves bulk runs up front and writes
/// fixed-width copies — there is nothing left to allocate.
#[test]
fn native_encode_is_allocation_free_over_a_pooled_buffer() {
    register_native_stubs();
    let (g, h, ty, var) = choice_heavy_pair();
    let native = native_for(&g, &h, ty, var).expect("choice-heavy stub is emitted");
    let encode = native.encode.unwrap();
    let mut rng = mockingbird_rng::StdRng::seed_from_u64(11);
    let v = sample_value(&g, ty, &mut rng, 4);

    // Warm the pooled buffer to its high-water capacity.
    let mut w = CdrWriter::new(Endian::Little);
    encode(&mut w, &v).unwrap();
    let pooled = w.into_bytes();
    let capacity = pooled.capacity();

    let mut pooled = pooled;
    for _ in 0..32 {
        pooled.clear();
        let mut w = CdrWriter::from_vec(pooled, Endian::Little);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        encode(&mut w, &v).unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(after - before, 0, "native encode must not allocate");
        pooled = w.into_bytes();
        assert_eq!(pooled.capacity(), capacity, "pooled buffer must not grow");
    }
}

/// End to end: a `RemoteStub` built in this process resolves the
/// emitted fitter stubs by nominal fingerprint alone, reports the
/// native dispatch tier, runs a call through them, and attributes the
/// call in the runtime metrics.
#[test]
fn remote_stub_resolves_and_runs_the_native_tier() {
    register_native_stubs();
    let mut g = MtypeGraph::new();
    let (java, cfun) = fitter_pair(&mut g);
    let corr = Comparer::new(&g, &g)
        .compare(java, cfun, Mode::Equivalence)
        .expect("fitter pair matches");
    let plan = Arc::new(CoercionPlan::new(
        &g,
        &g,
        corr,
        RuleSet::full(),
        Mode::Equivalence,
    ));

    // Wire types the server speaks: the C invocation minus its reply
    // port, and the C output record.
    let r = g.real(mockingbird::mtype::RealPrecision::SINGLE);
    let pt = g.record(vec![r, r]);
    let c_args = {
        let list = g.list_of(pt);
        g.record(vec![list])
    };
    let c_out = g.record(vec![pt, pt]);
    let graph = Arc::new(g);
    let servant: Arc<dyn Servant> = Arc::new(|_: &str, args: MValue| {
        let MValue::Record(items) = args else {
            return Err(RuntimeError::Application("bad args".into()));
        };
        let MValue::List(pts) = &items[0] else {
            return Err(RuntimeError::Application("bad pts".into()));
        };
        let first = pts.first().cloned().unwrap();
        let last = pts.last().cloned().unwrap();
        Ok(MValue::Record(vec![first, last]))
    });
    let op = WireOp::new(graph, c_args, c_out);
    let mut ops = HashMap::new();
    ops.insert("fit".to_string(), op.clone());
    let d = Arc::new(Dispatcher::new());
    let mut server_ops = HashMap::new();
    server_ops.insert("fit".to_string(), op);
    d.register(b"fitter".to_vec(), WireServant::new(servant, server_ops));
    let remote = Arc::new(RemoteRef::new(
        Arc::new(InMemoryConnection::new(d)),
        b"fitter".to_vec(),
        ops,
        Endian::Little,
    ));
    let stub = RemoteStub::new(FunctionStub::new(plan).unwrap(), remote.clone(), "fit");
    assert_eq!(
        stub.dispatch_tier(),
        "native",
        "both directions must resolve emitted stubs"
    );

    let point = |x: f64, y: f64| MValue::Record(vec![MValue::Real(x), MValue::Real(y)]);
    let pts = MValue::List(vec![point(0.0, 0.0), point(1.0, 1.0), point(2.0, 2.0)]);
    let out = stub.call(&[pts]).unwrap();
    assert_eq!(
        out,
        MValue::Record(vec![MValue::Record(vec![point(0.0, 0.0), point(2.0, 2.0)])])
    );

    let snap = remote.metrics().snapshot();
    assert!(snap.native_calls >= 1, "the call must count as native");
    assert_eq!(snap.native_fallbacks, 0, "no direction fell back");
}
