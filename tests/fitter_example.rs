//! F1–F5: the paper's worked example, end to end.
//!
//! Figures 1, 2 and 5 give the Java application types, the C `fitter`
//! declaration and the ideal Java interface; §3.4 walks through the
//! annotations. These tests reproduce every claim: the pre-annotation
//! mismatch, the exact §3.4 Mtype, the generated stub's behaviour with
//! real Java object graphs and a real C memory image, and the emitted
//! stub source.

use mockingbird::stubgen::emit::{emit_c_stub, emit_jni_bridge};
use mockingbird::stype::ast::Stype;
use mockingbird::values::{CCodec, CMemory, CTarget, JCodec, JHeap, JValue, MValue, ReadContext};
use mockingbird::{Mode, Session};

const FIG2_C: &str = "typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);";

const FIG1_5_JAVA: &str = "
public class Point {
    public Point(float x, float y) { this.x = x; this.y = y; }
    public float getX() { return x; }
    private float x;
    private float y;
}
public class Line {
    public Line(Point s, Point e) { }
    public Point getStart() { return start; }
    private Point start;
    private Point end;
}
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }";

const ANNOTATIONS: &str = "
annotate fitter.param(pts) length=param(count)
annotate fitter.param(start) direction=out
annotate fitter.param(end) direction=out
annotate Line.field(start) non-null no-alias
annotate Line.field(end) non-null no-alias
annotate PointVector element=Point non-null
annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null";

fn annotated_session() -> Session {
    let mut s = Session::new();
    s.load_c(FIG2_C).unwrap();
    s.load_java(FIG1_5_JAVA).unwrap();
    s.annotate(ANNOTATIONS).unwrap();
    s
}

#[test]
fn f1_f2_declarations_parse_as_written() {
    let mut s = Session::new();
    s.load_c(FIG2_C).unwrap();
    s.load_java(FIG1_5_JAVA).unwrap();
    for name in [
        "point",
        "fitter",
        "Point",
        "Line",
        "PointVector",
        "JavaIdeal",
    ] {
        assert!(s.universe().get(name).is_some(), "{name} must be loaded");
    }
}

#[test]
fn f5_pre_annotation_mismatch_with_diagnostics() {
    let mut s = Session::new();
    s.load_c(FIG2_C).unwrap();
    s.load_java(FIG1_5_JAVA).unwrap();
    let err = s
        .compare("JavaIdeal", "fitter", Mode::Equivalence)
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("types do not match"), "{text}");
}

#[test]
fn f5_section_3_4_mtype_shape() {
    let mut s = annotated_session();
    // §3.4: "port(Record(L, port(Record(Real,Real), Record(Real,Real))))"
    // where L is the recursive list of Record(Real,Real).
    let c = s.display_mtype("fitter").unwrap();
    assert_eq!(
        c,
        "port(Record(Rec#L(Choice(Unit, Record(Record(Real{24,8}, Real{24,8}), #L))), \
         port(Record(Record(Real{24,8}, Real{24,8}), Record(Real{24,8}, Real{24,8})))))"
    );
    // The Java side groups the four output reals as a Line; the
    // isomorphism rules absorb the difference.
    let plan = s.compare("JavaIdeal", "fitter", Mode::Equivalence).unwrap();
    assert!(plan.len() >= 5);
    // Two-way: the same plan also converts C-side values back to Java.
    let line_c = MValue::Record(vec![
        MValue::Record(vec![MValue::Real(0.0), MValue::Real(0.0)]),
        MValue::Record(vec![MValue::Real(1.0), MValue::Real(1.0)]),
    ]);
    let _ = line_c; // exercised through the stub below
}

#[test]
fn fitter_stub_with_real_java_heap_and_c_memory() {
    let mut s = annotated_session();
    let stub = s.function_stub("JavaIdeal", "fitter").unwrap();

    // Java side: PointVector of Point objects.
    let mut heap = JHeap::new();
    let jcodec = JCodec::new(s.universe());
    let points: Vec<JValue> = [(0.0f32, 1.0f32), (2.0, 3.0), (4.0, 5.0)]
        .iter()
        .map(|&(x, y)| heap.instance("Point", vec![JValue::Float(x), JValue::Float(y)]))
        .collect();
    let pv = heap.vector(points);
    let pts = jcodec
        .to_mvalue(&heap, &Stype::named("PointVector"), &pv)
        .unwrap();

    // C side: the fitter reads its points out of a genuine memory image.
    let uni = s.universe().clone();
    let c_fitter = move |args: MValue| -> Result<MValue, String> {
        let codec = CCodec::new(&uni, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let MValue::Record(items) = &args else {
            return Err("frame".into());
        };
        let MValue::List(pts) = &items[0] else {
            return Err("pts".into());
        };
        let base = mem.alloc(8 * pts.len().max(1), 4);
        for (i, p) in pts.iter().enumerate() {
            codec
                .write_at(&mut mem, &Stype::named("point"), base + (i * 8) as u64, p)
                .map_err(|e| e.to_string())?;
        }
        let first = codec
            .read_at(&mem, &Stype::named("point"), base, &ReadContext::default())
            .map_err(|e| e.to_string())?;
        let last = codec
            .read_at(
                &mem,
                &Stype::named("point"),
                base + ((pts.len() - 1) * 8) as u64,
                &ReadContext::default(),
            )
            .map_err(|e| e.to_string())?;
        Ok(MValue::Record(vec![first, last]))
    };

    let out = stub.call(&[pts], &c_fitter).unwrap();
    // Java shape: Record(Line) where Line = Record(point, point).
    assert_eq!(
        out,
        MValue::Record(vec![MValue::Record(vec![
            MValue::Record(vec![MValue::Real(0.0), MValue::Real(1.0)]),
            MValue::Record(vec![MValue::Real(4.0), MValue::Real(5.0)]),
        ])])
    );

    // And the Line materialises as a Java object graph.
    let MValue::Record(line) = &out else { panic!() };
    let jline = jcodec
        .from_mvalue(&mut heap, &Stype::named("Line"), &line[0])
        .unwrap();
    let m2 = jcodec
        .to_mvalue(&heap, &Stype::named("Line"), &jline)
        .unwrap();
    assert_eq!(m2, line[0]);
}

#[test]
fn emitted_stub_sources_reflect_the_plan() {
    let mut s = annotated_session();
    let stub = s.function_stub("JavaIdeal", "fitter").unwrap();
    let c = emit_c_stub(&stub, "fitter", &["pts"]).unwrap();
    assert!(c.contains("fitter_stub"));
    assert!(c.contains("mb_send_and_wait"));
    let jni = emit_jni_bridge(&stub, "JavaIdeal", "fitter", "fitter").unwrap();
    assert!(jni.contains("JNIEXPORT jobject JNICALL Java_JavaIdeal_fitter"));
    assert!(jni.contains("Conversion schedule derived from the coercion plan"));
}

#[test]
fn missing_each_annotation_breaks_the_match() {
    // Dropping any single load-bearing annotation line must produce a
    // mismatch — the iterative annotate/compare loop of Fig. 6.
    let load_bearing = [
        "annotate fitter.param(pts) length=param(count)",
        "annotate fitter.param(start) direction=out",
        "annotate Line.field(start) non-null no-alias",
        "annotate PointVector element=Point non-null",
        "annotate JavaIdeal.method(fitter).ret non-null",
    ];
    for dropped in load_bearing {
        let reduced: String = ANNOTATIONS
            .lines()
            .filter(|l| l.trim() != dropped)
            .collect::<Vec<_>>()
            .join("\n");
        let mut s = Session::new();
        s.load_c(FIG2_C).unwrap();
        s.load_java(FIG1_5_JAVA).unwrap();
        s.annotate(&reduced).unwrap();
        assert!(
            s.compare("JavaIdeal", "fitter", Mode::Equivalence).is_err(),
            "dropping `{dropped}` must break the match"
        );
    }
}

#[test]
fn aliasing_and_null_violations_are_caught_at_runtime() {
    let s = annotated_session();
    let mut heap = JHeap::new();
    let jcodec = JCodec::new(s.universe());
    let p = heap.instance("Point", vec![JValue::Float(0.0), JValue::Float(0.0)]);
    // The same Point aliased into both Line fields: the no-alias
    // annotation promised this cannot happen.
    let line = heap.instance("Line", vec![p, p]);
    let e = jcodec
        .to_mvalue(&heap, &Stype::named("Line"), &line)
        .unwrap_err();
    assert!(e.to_string().contains("aliasing"));
    // A null in a non-null field is likewise rejected.
    let line = heap.instance("Line", vec![p, JValue::Null]);
    let e = jcodec
        .to_mvalue(&heap, &Stype::named("Line"), &line)
        .unwrap_err();
    assert!(e.to_string().contains("non-null"));
}
