//! Mesh chaos: location-transparent references under churn.
//!
//! The suite covers the three acceptance bars for the naming layer:
//! seeded partition/rejoin gossip replays byte-for-byte across 64
//! seeds, a 1000-call soak never routes a request to a replica whose
//! departure was observed, and killing a live TCP replica mid-load
//! strands no caller — every call completes via failover to the
//! remaining replicas. Every test that draws randomness prints its
//! seed; re-running with that seed replays the identical schedule.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use mockingbird::mesh::{GossipMessage, MeshConfig, MeshNode, MeshResolver, ObjectAd, SimMesh};
use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::metrics::MetricsRegistry;
use mockingbird::runtime::{
    CallOptions, Connection, ConnectionPool, Connector, Dispatcher, InMemoryConnection, ObjectName,
    RemoteRef, RetryPolicy, RuntimeError, Servant, ServerConfig, TcpServer, WireOp, WireServant,
};
use mockingbird::values::{Endian, MValue};
use mockingbird::wire::HandshakeInfo;

/// An echo servant that counts every dispatched call and flags a
/// violation when a call arrives after the replica was fenced (its
/// departure observed by the client). Returns the dispatcher and the
/// op table a client needs to call it.
fn counting_echo(
    calls: Arc<AtomicU64>,
    fenced: Arc<AtomicBool>,
    violations: Arc<AtomicU64>,
    delay: Duration,
) -> (Arc<Dispatcher>, HashMap<String, WireOp>) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(move |_: &str, v: MValue| {
        calls.fetch_add(1, Ordering::SeqCst);
        if fenced.load(Ordering::SeqCst) {
            violations.fetch_add(1, Ordering::SeqCst);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(v)
    });
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
    (d, ops)
}

fn payload(k: i128) -> MValue {
    MValue::Record(vec![MValue::Int(k)])
}

/// Tells `client` everything `server` currently believes, as one
/// gossip push (the test stands in for the transport).
fn push(server: &Arc<MeshNode>, client: &Arc<MeshNode>) {
    client.receive(&GossipMessage {
        from: server.id(),
        members: server.members(),
    });
}

#[test]
fn partition_rejoin_replays_byte_for_byte_across_64_seeds() {
    // The headline determinism bar: for 64 seeds, the full digest
    // history of a partition → departure → heal → rejoin schedule is
    // identical across two runs, and every run re-converges with all
    // five replicas resolvable again.
    for seed in 0..64u64 {
        let run = || {
            let nodes: Vec<_> = (1..=5u64)
                .map(|id| {
                    let node = MeshNode::new(MeshConfig::new(id, seed));
                    node.advertise(ObjectAd::new(
                        "calc",
                        0xCA1C,
                        0,
                        format!("127.0.0.1:{}", 9100 + id).parse().unwrap(),
                    ));
                    node
                })
                .collect();
            let mut sim = SimMesh::new(nodes);
            sim.introduce_all();
            let warmup = sim
                .run_until_converged(50)
                .unwrap_or_else(|| panic!("no initial convergence (seed={seed})"));

            let mut history = vec![sim.digests()];
            sim.partition(&[&[1, 2], &[3, 4, 5]]);
            sim.node(2).leave();
            for _ in 0..6 {
                sim.step();
                history.push(sim.digests());
            }
            assert!(
                !sim.converged(),
                "partitioned sides must disagree about the departure (seed={seed})"
            );

            sim.heal();
            sim.node(2).rejoin();
            let heal_rounds = sim
                .run_until_converged(100)
                .unwrap_or_else(|| panic!("no re-convergence after heal (seed={seed})"));
            history.push(sim.digests());

            // Convergence is judged on membership; suspicion raised
            // during the quiet partition lifts as refreshes arrive.
            // Drain until every node resolves all five replicas again.
            let mut drain = 0u64;
            while sim
                .nodes()
                .iter()
                .any(|n| n.lookup(&ObjectName::any("calc")).len() != 5)
            {
                assert!(drain < 50, "suspicion never lifted (seed={seed})");
                sim.step();
                drain += 1;
            }
            (warmup, history, heal_rounds, drain)
        };
        let first = run();
        let second = run();
        assert_eq!(
            first, second,
            "partition/rejoin history diverged; reproduce with seed={seed}"
        );
    }
}

#[test]
fn soak_never_routes_to_a_departed_replica() {
    // Satellite (c): three replicas serve 1000+ concurrent calls while
    // one leaves mid-load and a fourth joins. Calls in flight when the
    // departure lands may still complete on the leaver — that is
    // correct — but once the client *observes* the leave, not one more
    // call may reach it.
    let seed = 0x4E57u64;
    println!("mesh soak seed: {seed:#x}");
    let addr = |p: u16| -> SocketAddr { format!("127.0.0.1:{p}").parse().unwrap() };
    let replicas: Vec<SocketAddr> = vec![addr(9201), addr(9202), addr(9203), addr(9204)];

    // Per-replica counting servants over in-memory transport. The
    // fence flips only after the client's observation point, so any
    // count against it is a true routing violation.
    let calls: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let fences: Vec<Arc<AtomicBool>> = (0..4).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let violations = Arc::new(AtomicU64::new(0));
    let mut dispatchers: HashMap<SocketAddr, Arc<Dispatcher>> = HashMap::new();
    let mut ops = None;
    for (i, a) in replicas.iter().enumerate() {
        let (d, o) = counting_echo(
            Arc::clone(&calls[i]),
            Arc::clone(&fences[i]),
            Arc::clone(&violations),
            Duration::from_micros(200),
        );
        dispatchers.insert(*a, d);
        ops = Some(o);
    }
    let ops = ops.unwrap();

    // The mesh: replicas A, B, C advertise up front; D exists but has
    // not joined yet. The client node records into the pool's registry.
    let fp = 0xEC40u128;
    let servers: Vec<Arc<MeshNode>> = (0..4)
        .map(|i| {
            let node = MeshNode::new(MeshConfig::new(2 + i as u64, seed));
            node.advertise(ObjectAd::new("echo", fp, 0, replicas[i]));
            node
        })
        .collect();
    let registry = MetricsRegistry::shared();
    let client = MeshNode::with_metrics(MeshConfig::new(1, seed), Arc::clone(&registry));
    for server in &servers[..3] {
        push(server, &client);
    }

    let connector: Connector = {
        let dispatchers = dispatchers.clone();
        Arc::new(move |a: SocketAddr| {
            let d = dispatchers
                .get(&a)
                .ok_or_else(|| RuntimeError::Transport(format!("no replica at {a}")))?;
            Ok(Arc::new(InMemoryConnection::new(Arc::clone(d))) as Arc<dyn Connection>)
        })
    };
    let pool = Arc::new(
        ConnectionPool::builder(Vec::new())
            .with_resolver(
                Arc::new(MeshResolver::new(Arc::clone(&client))),
                ObjectName::new("echo", fp),
            )
            .with_slots(1)
            .with_connector(connector)
            .with_metrics(Arc::clone(&registry))
            .build()
            .unwrap(),
    );
    assert!(pool.is_dynamic());
    assert_eq!(pool.endpoints(), replicas[..3].to_vec());

    let threads = 8usize;
    let per_thread = 63usize; // 8 × 63 × 2 phases = 1008 calls
    let phase = |tag: i128| {
        let barrier = Arc::new(Barrier::new(threads));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let pool = Arc::clone(&pool);
                let ops = ops.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let remote = RemoteRef::new(pool, b"obj".to_vec(), ops, Endian::Little);
                    barrier.wait();
                    for k in 0..per_thread {
                        let v = payload(tag * 1000 + t as i128 * 100 + k as i128);
                        assert_eq!(remote.invoke("echo", &v).unwrap(), v);
                    }
                })
            })
            .collect();
        workers
    };

    // Phase 1: replica B (index 1) leaves while the calls are in
    // flight; the client hears the obituary mid-load.
    let workers = phase(1);
    std::thread::sleep(Duration::from_millis(3));
    servers[1].leave();
    push(&servers[1], &client);
    for w in workers {
        w.join().unwrap();
    }

    // Observation point: the leave is applied to the routing table and
    // only now does a call to B become a violation.
    pool.resync();
    assert_eq!(
        pool.endpoints(),
        vec![replicas[0], replicas[2]],
        "the departed replica must be out of the live set"
    );
    fences[1].store(true, Ordering::SeqCst);

    // Phase 2: replica D joins and serves its share of the load.
    servers[3].advertise(ObjectAd::new("echo", fp, 0, replicas[3]));
    push(&servers[3], &client);
    for w in phase(2) {
        w.join().unwrap();
    }

    let total: u64 = calls.iter().map(|c| c.load(Ordering::SeqCst)).sum();
    assert!(
        total >= 1008,
        "expected ≥1008 dispatched calls, saw {total}"
    );
    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "calls reached a replica after its leave was observed (seed={seed:#x})"
    );
    assert!(
        calls[3].load(Ordering::SeqCst) > 0,
        "the joining replica never received a call (seed={seed:#x})"
    );
    let snap = registry.snapshot();
    assert!(snap.mesh_members_seen >= 3, "{}", snap.mesh_members_seen);
    assert!(snap.mesh_resolutions >= 3, "{}", snap.mesh_resolutions);
}

#[test]
fn killing_a_tcp_replica_mid_load_fails_over_without_stranding_calls() {
    // The tentpole bar over real sockets: three TCP replicas, one is
    // killed mid-load (socket gone, no goodbye), and every single call
    // still completes — first via retry-failover onto the survivors,
    // then, once the obituary is observed, via a shrunken live set.
    let seed = 0xFA11u64;
    println!("mesh failover seed: {seed:#x}");
    let calls: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let violations = Arc::new(AtomicU64::new(0));
    let mut servers = Vec::new();
    let mut ops = None;
    for c in &calls {
        let (d, o) = counting_echo(
            Arc::clone(c),
            Arc::new(AtomicBool::new(false)),
            Arc::clone(&violations),
            Duration::ZERO,
        );
        servers.push(TcpServer::bind("127.0.0.1:0", d).unwrap());
        ops = Some(o);
    }
    let ops = ops.unwrap();

    let fp = 0xFA11u128;
    let mesh_servers: Vec<Arc<MeshNode>> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let node = MeshNode::new(MeshConfig::new(2 + i as u64, seed));
            node.advertise(ObjectAd::new("echo", fp, 0, s.addr()));
            node
        })
        .collect();
    let registry = MetricsRegistry::shared();
    let client = MeshNode::with_metrics(MeshConfig::new(1, seed), Arc::clone(&registry));
    for server in &mesh_servers {
        push(server, &client);
    }

    let pool = Arc::new(
        ConnectionPool::builder(Vec::new())
            .with_resolver(
                Arc::new(MeshResolver::new(Arc::clone(&client))),
                ObjectName::new("echo", fp),
            )
            .with_slots(1)
            .with_metrics(Arc::clone(&registry))
            .build()
            .unwrap(),
    );
    assert_eq!(pool.endpoints().len(), 3);
    let victim = servers[1].addr();
    let remote = RemoteRef::new(
        Arc::clone(&pool) as Arc<dyn Connection>,
        b"obj".to_vec(),
        ops,
        Endian::Little,
    )
    .with_options(CallOptions::new().with_retry(RetryPolicy {
        max_retries: 4,
        initial_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
        jitter: true,
    }));

    for k in 0..300i128 {
        if k == 100 {
            // The kill: the socket dies with requests still coming.
            // The mesh has NOT spread the news yet — calls that land
            // on the corpse must fail over, not fail.
            servers[1].shutdown();
        }
        if k == 140 {
            // The obituary arrives; the pool retires the endpoint.
            mesh_servers[1].leave();
            push(&mesh_servers[1], &client);
        }
        assert_eq!(
            remote.invoke("echo", &payload(k)).unwrap(),
            payload(k),
            "call {k} stranded (seed={seed:#x})"
        );
    }

    pool.resync();
    let live = pool.endpoints();
    assert_eq!(live.len(), 2, "the dead replica must be retired");
    assert!(!live.contains(&victim));
    let snap = registry.snapshot();
    assert!(
        snap.mesh_failovers >= 1,
        "the kill window must have exercised failover (seed={seed:#x})"
    );
    assert!(calls[0].load(Ordering::SeqCst) > 0);
    assert!(calls[2].load(Ordering::SeqCst) > 0);
    for s in &mut servers {
        s.shutdown();
    }
}

#[test]
fn version_skewed_replica_is_quarantined_and_calls_fail_over() {
    // A replica compiled against different declarations advertises the
    // same object. Its handshake rejects at dial time (VersionSkew);
    // the proxy fails over to a compatible replica — even with no
    // retry policy, and even for a non-idempotent call, because the
    // rejected request never executed. The skewed endpoint is
    // quarantined: once marked, it is never dialed again.
    let seed = 0x5E3Bu64;
    println!("mesh skew seed: {seed:#x}");
    let calls: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let violations = Arc::new(AtomicU64::new(0));
    let mut built = Vec::new();
    for c in &calls {
        built.push(counting_echo(
            Arc::clone(c),
            Arc::new(AtomicBool::new(false)),
            Arc::clone(&violations),
            Duration::ZERO,
        ));
    }
    let ops = built[0].1.clone();
    let good = HandshakeInfo::new(built[0].0.interface_fingerprint(), 7);
    // Replica B answers the handshake with a different interface
    // fingerprint — the wire-level truth about skew, regardless of
    // what the mesh ad claims.
    let skewed = HandshakeInfo::new(good.interface_fp ^ 0xDEAD, 7);
    let mut servers = Vec::new();
    for (i, (d, _)) in built.iter().enumerate() {
        let info = if i == 1 { skewed } else { good };
        servers.push(
            TcpServer::bind_with(
                "127.0.0.1:0",
                Arc::clone(d),
                ServerConfig::default().with_handshake(info),
            )
            .unwrap(),
        );
    }

    let fp = 0x5E3Bu128;
    let registry = MetricsRegistry::shared();
    let client = MeshNode::with_metrics(MeshConfig::new(1, seed), Arc::clone(&registry));
    for (i, s) in servers.iter().enumerate() {
        let node = MeshNode::new(MeshConfig::new(2 + i as u64, seed));
        node.advertise(ObjectAd::new("echo", fp, 0, s.addr()));
        push(&node, &client);
    }

    let pool = Arc::new(
        ConnectionPool::builder(Vec::new())
            .with_resolver(
                Arc::new(MeshResolver::new(Arc::clone(&client))),
                ObjectName::new("echo", fp),
            )
            .with_slots(1)
            .with_handshake(good)
            .with_metrics(Arc::clone(&registry))
            .build()
            .unwrap(),
    );
    let remote = RemoteRef::new(
        Arc::clone(&pool) as Arc<dyn Connection>,
        b"obj".to_vec(),
        ops,
        Endian::Little,
    );

    // No retry policy, non-idempotent op table default aside: every
    // call must succeed because skew is a connect-time verdict.
    for k in 0..60i128 {
        assert_eq!(
            remote.invoke("echo", &payload(k)).unwrap(),
            payload(k),
            "call {k} failed instead of failing over (seed={seed:#x})"
        );
    }
    let snap = registry.snapshot();
    assert!(
        snap.mesh_failovers >= 1,
        "dialing the skewed replica must have triggered failover"
    );
    assert!(snap.handshake_rejects >= 1);
    assert_eq!(calls[1].load(Ordering::SeqCst), 0, "skew must block calls");

    // Quarantine is permanent: more load provokes no new handshakes
    // with the skewed peer.
    let rejects_before = registry.snapshot().handshake_rejects;
    for k in 0..30i128 {
        assert!(remote.invoke("echo", &payload(100 + k)).is_ok());
    }
    assert_eq!(
        registry.snapshot().handshake_rejects,
        rejects_before,
        "a quarantined endpoint must never be re-dialed"
    );
    for s in &mut servers {
        s.shutdown();
    }
}
