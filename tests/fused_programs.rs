//! Property tests for the fused data plane: on random corpus pairs, the
//! compiled [`WireProgram`] must agree with the interpretive path —
//! encode byte-for-byte (`plan.convert` + `put_value`), decode
//! value-for-value (`get_value` + `plan.convert_back`) — in both byte
//! orders, and survive its portable serialisation unchanged. Each
//! property runs over a deterministic stream of seeds so failures
//! replay exactly.

use mockingbird_rng::StdRng;

use mockingbird::comparer::{Comparer, Mode, RuleSet};
use mockingbird::corpus::{isomorphic_variant, random_mtype, sample_value};
use mockingbird::mtype::MtypeGraph;
use mockingbird::plan::CoercionPlan;
use mockingbird::values::Endian;
use mockingbird::wire::{CdrReader, CdrWriter, WireProgram};

const CASES: u64 = 64;

/// Builds the plan for a random pair under `seed`, or `None` when the
/// program compiler does not support the pair's shape (ports, Dynamic):
/// those fall back to the interpretive path by design.
fn fused_case(seed: u64) -> Option<(MtypeGraph, MtypeGraph, CoercionPlan, WireProgram, StdRng)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MtypeGraph::new();
    let ty = random_mtype(&mut g, &mut rng, 3);
    let mut h = MtypeGraph::new();
    let var = isomorphic_variant(&g, ty, &mut h);
    let corr = Comparer::new(&g, &h)
        .compare(ty, var, Mode::Equivalence)
        .expect("isomorphic variants must match");
    let plan = CoercionPlan::new(&g, &h, corr, RuleSet::full(), Mode::Equivalence);
    let program = WireProgram::compile(&plan).ok()?;
    Some((g, h, plan, program, rng))
}

/// Fused encode produces byte-for-byte the interpretive encoding, and
/// fused decode produces value-for-value the interpretive decoding, for
/// random values in both byte orders.
#[test]
fn fused_programs_agree_with_the_interpretive_path() {
    let mut fused = 0usize;
    for seed in 0..CASES {
        let Some((_g, h, plan, program, mut rng)) = fused_case(seed) else {
            continue;
        };
        fused += 1;
        assert!(program.two_way(), "equivalence plans fuse both directions");
        for _round in 0..4 {
            let v = sample_value(plan.left_graph(), plan.left_root(), &mut rng, 3);
            for endian in [Endian::Little, Endian::Big] {
                // Encode: byte-for-byte against convert + put_value.
                let converted = plan.convert(&v).unwrap();
                let mut oracle = CdrWriter::new(endian);
                oracle.put_value(&h, plan.right_root(), &converted).unwrap();
                let oracle = oracle.into_bytes();
                let mut w = CdrWriter::new(endian);
                program.encode_value(&mut w, &v).unwrap();
                assert_eq!(w.into_bytes(), oracle, "seed {seed} encode {endian:?}");

                // Decode: value-for-value against get_value +
                // convert_back (which may canonicalise Choice indices,
                // so the oracle is the interpretive result, not `v`).
                let mut or = CdrReader::new(&oracle, endian);
                let wire = or.get_value(&h, plan.right_root()).unwrap();
                let expected = plan.convert_back(&wire).unwrap();
                let mut r = CdrReader::new(&oracle, endian);
                assert_eq!(
                    program.decode_value(&mut r).unwrap(),
                    expected,
                    "seed {seed} decode {endian:?}"
                );
                assert_eq!(r.remaining(), 0, "seed {seed} {endian:?}");
            }
        }
    }
    assert!(
        fused >= CASES as usize / 2,
        "the program compiler should cover most of the corpus, got {fused}/{CASES}"
    );
}

/// A program survives its portable byte serialisation with identical
/// observable behaviour (what the project-file persistence relies on).
#[test]
fn serialised_programs_behave_identically() {
    for seed in 0..CASES {
        let Some((g, _h, plan, program, mut rng)) = fused_case(seed) else {
            continue;
        };
        let restored = WireProgram::from_bytes(&program.to_bytes()).expect("round trip");
        assert_eq!(restored.two_way(), program.two_way());
        let v = sample_value(&g, plan.left_root(), &mut rng, 3);
        for endian in [Endian::Little, Endian::Big] {
            let mut a = CdrWriter::new(endian);
            program.encode_value(&mut a, &v).unwrap();
            let a = a.into_bytes();
            let mut b = CdrWriter::new(endian);
            restored.encode_value(&mut b, &v).unwrap();
            assert_eq!(b.into_bytes(), a, "seed {seed} {endian:?}");
            let mut r = CdrReader::new(&a, endian);
            let mut rr = CdrReader::new(&a, endian);
            assert_eq!(
                restored.decode_value(&mut rr).unwrap(),
                program.decode_value(&mut r).unwrap(),
                "seed {seed} {endian:?}"
            );
        }
    }
}
