//! Driving the `mbc` command-line tool end to end (the batch-mode
//! equivalent of the paper's Fig. 7 session).

use std::path::PathBuf;
use std::process::Command;

fn mbc() -> Command {
    // The binary is built alongside the test profile.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/tests-e2e -> crates
    path.pop(); // crates -> repo root
    path.push("target");
    path.push(if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    });
    path.push("mbc");
    Command::new(path)
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p.to_string_lossy().into_owned()
}

fn fitter_files(dir: &std::path::Path) -> (String, String, String) {
    let c = write(
        dir,
        "fitter.c",
        "typedef float point[2];\nvoid fitter(point pts[], int count, point *start, point *end);\n",
    );
    let java = write(
        dir,
        "app.java",
        "public class Point { private float x; private float y; }\n\
         public class Line { private Point start; private Point end; }\n\
         public class PointVector extends java.util.Vector;\n\
         public interface JavaIdeal { Line fitter(PointVector pts); }\n",
    );
    let script = write(
        dir,
        "fitter.mba",
        "annotate fitter.param(pts) length=param(count)\n\
         annotate fitter.param(start) direction=out\n\
         annotate fitter.param(end) direction=out\n\
         annotate Line.field(start) non-null no-alias\n\
         annotate Line.field(end) non-null no-alias\n\
         annotate PointVector element=Point non-null\n\
         annotate JavaIdeal.method(fitter).param(pts) non-null\n\
         annotate JavaIdeal.method(fitter).ret non-null\n",
    );
    (c, java, script)
}

#[test]
fn parse_lists_declarations() {
    let dir = scratch();
    let (c, java, _) = fitter_files(&dir);
    let out = mbc().args(["parse", &c, &java]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "point",
        "fitter",
        "Point",
        "Line",
        "PointVector",
        "JavaIdeal",
    ] {
        assert!(text.contains(name), "{name} missing from:\n{text}");
    }
}

#[test]
fn mtype_prints_the_section_3_4_form() {
    let dir = scratch();
    let (c, _java, script) = fitter_files(&dir);
    let out = mbc()
        .args(["mtype", &c, "--of", "fitter", "--script", &script])
        .output()
        .unwrap();
    // The script mentions Java names the C-only session lacks: expect a
    // clean failure with a selector diagnostic.
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown declaration"), "{err}");

    // With both files the Mtype prints.
    let (c, java, script) = fitter_files(&dir);
    let out = mbc()
        .args(["mtype", &c, &java, "--of", "fitter", "--script", &script])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("port(Record(Rec#L("), "{text}");
}

#[test]
fn compare_match_and_mismatch() {
    let dir = scratch();
    let (c, java, script) = fitter_files(&dir);
    let out = mbc()
        .args([
            "compare",
            &c,
            &java,
            "--left",
            "JavaIdeal",
            "--right",
            "fitter",
            "--script",
            &script,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("MATCH (two-way)"));

    // Without the script: NO MATCH, nonzero exit, diagnostics on stderr.
    let out = mbc()
        .args([
            "compare",
            &c,
            &java,
            "--left",
            "JavaIdeal",
            "--right",
            "fitter",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("types do not match"));
}

#[test]
fn emit_produces_stub_sources() {
    let dir = scratch();
    let (c, java, script) = fitter_files(&dir);
    let out = mbc()
        .args([
            "emit",
            &c,
            &java,
            "--left",
            "JavaIdeal",
            "--right",
            "fitter",
            "--script",
            &script,
            "--name",
            "fitter",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fitter_stub"));
    assert!(text.contains("JNIEXPORT"));
    assert!(text.contains("pub fn fitter"));
}

#[test]
fn save_then_reload_project() {
    let dir = scratch();
    let (c, java, script) = fitter_files(&dir);
    let proj = dir
        .join("session.mbproj.json")
        .to_string_lossy()
        .into_owned();
    let out = mbc()
        .args([
            "save", &c, &java, "--script", &script, "--name", "fitter", "--out", &proj,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Compare straight from the project file: annotations persisted.
    let out = mbc()
        .args(["compare", &proj, "--left", "JavaIdeal", "--right", "fitter"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_usage_is_reported() {
    let out = mbc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mbc().args(["compare"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no input files"));
    let dir = scratch();
    let f = write(&dir, "x.unknown", "zzz");
    let out = mbc().args(["parse", &f]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown file kind"));
}
