//! Overload: the metastable-failure A/B scenario for the
//! resilience stack (deadline propagation + retry budgets + AIMD
//! admission).
//!
//! The failure mode under test is the classic metastable collapse:
//! offered load exceeds capacity, queues grow past the callers'
//! patience, the server spends its whole budget executing work whose
//! callers already gave up, and *goodput* (replies that arrive while
//! someone still wants them) falls to zero even though throughput
//! stays high. The old static-cap stack reproduces that collapse; the
//! new stack — propagated deadlines shed doomed work at admission,
//! dequeue, and dispatch, retry budgets cap amplification, and the
//! AIMD limiter turns queueing delay into early sheds — keeps goodput
//! at capacity through the same storm.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mockingbird::mtype::{IntRange, MtypeGraph};
use mockingbird::runtime::transport::TcpConnection;
use mockingbird::runtime::{
    CallOptions, ChaosConnection, Connection, ConnectionPool, Connector, Dispatcher,
    InMemoryConnection, RemoteRef, RetryBudget, RetryPolicy, RuntimeError, Servant, ServerConfig,
    TcpServer, WireOp, WireServant,
};
use mockingbird::values::{Endian, MValue};

/// Per-request servant work: with [`WORKERS`] dispatch workers the
/// server's capacity is `WORKERS / SERVICE_TIME` ≈ 500 calls/s.
const SERVICE_TIME: Duration = Duration::from_millis(4);
const WORKERS: usize = 2;

/// The callers' patience: a reply landing after this is worthless to
/// the client that asked, whether or not the server produced it.
const DEADLINE: Duration = Duration::from_millis(30);

/// Injected fault rate for both stacks (the ISSUE scenario's 20%).
const FAULT_RATE: f64 = 0.20;

/// Tolerance when checking that the server never *executed* expired
/// work: the propagated budget is restarted from the server's receive
/// instant, so loopback transit plus a chaos `Delay` (≤ 2 ms) can
/// legitimately push execution slightly past the client's absolute
/// deadline.
const TRANSIT_SLACK: Duration = Duration::from_millis(10);

/// Each load phase runs warmup (limiter convergence, queue fill) then
/// a measured window; only calls finishing inside the window count.
const WARMUP: Duration = Duration::from_millis(1000);
const MEASURE: Duration = Duration::from_millis(1500);

/// Client threads at 1× (saturates the workers without queue growth)
/// and under overload (~2× the server's service capacity once the
/// deadline bounds each cycle).
const BASELINE_THREADS: usize = 4;
const OVERLOAD_THREADS: usize = 32;

type DeadlineMap = Arc<Mutex<HashMap<i128, Instant>>>;

/// An idempotent echo servant that records whether it was ever asked
/// to execute a request whose caller's absolute deadline had already
/// passed (plus [`TRANSIT_SLACK`]) — the property the server-side
/// deadline checks must enforce.
fn echo_service(
    deadlines: DeadlineMap,
    late_executions: Arc<AtomicU64>,
) -> (Arc<Dispatcher>, HashMap<String, WireOp>) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(64));
    let rec = g.record(vec![i]);
    let graph = Arc::new(g);
    let op = WireOp::new(graph, rec, rec).idempotent();
    let servant: Arc<dyn Servant> = Arc::new(move |_: &str, v: MValue| {
        if let MValue::Record(fields) = &v {
            if let Some(MValue::Int(k)) = fields.first() {
                if let Some(deadline) = deadlines.lock().unwrap().get(k) {
                    if Instant::now() > *deadline + TRANSIT_SLACK {
                        late_executions.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }
        std::thread::sleep(SERVICE_TIME);
        Ok(v)
    });
    let mut ops = HashMap::new();
    ops.insert("echo".to_string(), op);
    let d = Arc::new(Dispatcher::new());
    d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
    (d, ops)
}

fn payload(k: i128) -> MValue {
    MValue::Record(vec![MValue::Int(k)])
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter: false,
    }
}

/// Drives `threads` closed-loop callers against `addr` through one
/// shared pool (chaos-wrapped dials at [`FAULT_RATE`]) and returns the
/// goodput count: calls that succeeded within [`DEADLINE`] during the
/// measured window. When `deadlines` is given, each call registers its
/// absolute deadline before being sent so the servant can detect
/// expired executions.
fn drive(
    addr: SocketAddr,
    threads: usize,
    ops: &HashMap<String, WireOp>,
    options: &CallOptions,
    budget: Arc<RetryBudget>,
    seed: u64,
    deadlines: Option<&DeadlineMap>,
) -> u64 {
    let dials = Arc::new(AtomicU64::new(0));
    let connector: Connector = Arc::new(move |a| {
        let n = dials.fetch_add(1, Ordering::SeqCst);
        Ok(Arc::new(ChaosConnection::with_fault_rate(
            Arc::new(TcpConnection::connect(a)?),
            seed + n,
            FAULT_RATE,
        )) as Arc<dyn Connection>)
    });
    let pool = Arc::new(
        ConnectionPool::builder(vec![addr])
            .with_slots(threads)
            .with_connector(connector)
            .with_retry_budget(budget)
            .build()
            .unwrap(),
    );
    let measure_from = Instant::now() + WARMUP;
    let stop_at = measure_from + MEASURE;
    let on_time = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let remote = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops.clone(), Endian::Little)
                .with_options(options.clone());
            let deadlines = deadlines.cloned();
            let on_time = Arc::clone(&on_time);
            std::thread::spawn(move || {
                let mut i: i128 = 0;
                while Instant::now() < stop_at {
                    let k = (t as i128) * 1_000_000 + i;
                    i += 1;
                    if let Some(map) = &deadlines {
                        map.lock().unwrap().insert(k, Instant::now() + DEADLINE);
                    }
                    let begin = Instant::now();
                    let ok = remote.invoke("echo", &payload(k)).is_ok();
                    let done = Instant::now();
                    if ok && done - begin <= DEADLINE && done >= measure_from {
                        on_time.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    on_time.load(Ordering::SeqCst)
}

#[test]
fn metastable_overload_collapses_the_static_stack_but_not_the_adaptive_one() {
    let seed = 0x0B5E_5512u64;
    println!("overload seed: {seed:#x}");

    // Phase 1 — capacity: the new stack at 1× load. This measures what
    // the server can actually deliver on this machine (service time,
    // chaos overhead, scheduler noise included), so the overload
    // assertions calibrate themselves instead of trusting nominal
    // numbers.
    let new_config = || {
        ServerConfig::default()
            .with_workers(WORKERS)
            .with_max_in_flight(8)
            .with_adaptive_limit(true)
            .with_target_p99(Duration::from_millis(10))
    };
    let new_options = CallOptions::new()
        .with_deadline(DEADLINE)
        .with_retry(retry_policy());
    let capacity = {
        let deadlines: DeadlineMap = Arc::new(Mutex::new(HashMap::new()));
        let late = Arc::new(AtomicU64::new(0));
        let (d, ops) = echo_service(Arc::clone(&deadlines), Arc::clone(&late));
        let mut server = TcpServer::bind_with("127.0.0.1:0", d, new_config()).unwrap();
        let good = drive(
            server.addr(),
            BASELINE_THREADS,
            &ops,
            &new_options,
            Arc::new(RetryBudget::default_for_pool()),
            seed,
            Some(&deadlines),
        );
        server.shutdown();
        assert_eq!(late.load(Ordering::SeqCst), 0, "no expired work at 1×");
        good
    };
    println!("capacity: {capacity} on-time replies in {MEASURE:?}");
    assert!(
        capacity > 200,
        "baseline too slow to calibrate ({capacity} on-time replies)"
    );

    // Phase 2 — the new stack under the storm: ~2× offered load, same
    // 20% faults. Deadline sheds + the AIMD limiter keep the queues
    // short, so goodput stays within 20% of capacity.
    let new_overload = {
        let deadlines: DeadlineMap = Arc::new(Mutex::new(HashMap::new()));
        let late = Arc::new(AtomicU64::new(0));
        let (d, ops) = echo_service(Arc::clone(&deadlines), Arc::clone(&late));
        let metrics = Arc::clone(d.metrics());
        let mut server = TcpServer::bind_with("127.0.0.1:0", d, new_config()).unwrap();
        let good = drive(
            server.addr(),
            OVERLOAD_THREADS,
            &ops,
            &new_options,
            Arc::new(RetryBudget::default_for_pool()),
            seed ^ 0x5eed,
            Some(&deadlines),
        );
        server.shutdown();
        assert_eq!(
            late.load(Ordering::SeqCst),
            0,
            "the server executed a request whose propagated deadline had expired"
        );
        let snap = metrics.snapshot();
        assert!(
            snap.deadline_expired_server > 0,
            "overload must make the server refuse some doomed work \
             (deadline_expired_server = 0 means propagation is dead)"
        );
        good
    };
    println!("new stack under overload: {new_overload} on-time replies");
    assert!(
        5 * new_overload >= 4 * capacity,
        "adaptive stack goodput collapsed: {new_overload} on-time vs capacity {capacity}"
    );

    // Phase 3 — the old stack in the same storm: static pinned cap, no
    // propagated deadlines (the client's patience is invisible to the
    // server), effectively unlimited retry tokens. Every queue slot is
    // spent on work whose caller has already given up.
    let old_overload = {
        let deadlines: DeadlineMap = Arc::new(Mutex::new(HashMap::new()));
        let late = Arc::new(AtomicU64::new(0));
        let (d, ops) = echo_service(deadlines, late);
        let old_config = ServerConfig::default().with_workers(WORKERS);
        let mut server = TcpServer::bind_with("127.0.0.1:0", d, old_config).unwrap();
        // No deadline in the options: nothing on the wire, no client
        // timeout — the legacy caller just waits, and the test scores
        // lateness from the outside.
        let old_options = CallOptions::new().with_retry(retry_policy());
        let good = drive(
            server.addr(),
            OVERLOAD_THREADS,
            &ops,
            &old_options,
            Arc::new(RetryBudget::new(1_000_000, 1_000_000)),
            seed ^ 0x01d5,
            None,
        );
        server.shutdown();
        good
    };
    println!("old stack under overload: {old_overload} on-time replies");
    assert!(
        2 * old_overload < capacity,
        "the static stack was supposed to collapse: {old_overload} on-time vs capacity {capacity}"
    );
}

#[test]
fn overload_outcomes_replay_from_the_seed() {
    // Determinism for the new machinery: with deadlines stamped on the
    // wire, criticality flags set, and a small retry budget draining
    // mid-run, the client-visible outcome sequence is a pure function
    // of the chaos seed.
    for seed in 0..16u64 {
        let run = || {
            let mut g = MtypeGraph::new();
            let i = g.integer(IntRange::signed_bits(64));
            let rec = g.record(vec![i]);
            let graph = Arc::new(g);
            let op = WireOp::new(graph, rec, rec).idempotent();
            let servant: Arc<dyn Servant> = Arc::new(move |_: &str, v: MValue| Ok(v));
            let mut ops = HashMap::new();
            ops.insert("echo".to_string(), op);
            let d = Arc::new(Dispatcher::new());
            d.register(b"obj".to_vec(), WireServant::new(servant, ops.clone()));
            // Each (re)dial gets its own schedule offset by the dial
            // index; calls run single-threaded, so the dial sequence —
            // and with it every fault decision — is seed-determined.
            let dials = Arc::new(AtomicU64::new(0));
            let connector: Connector = Arc::new(move |_| {
                let n = dials.fetch_add(1, Ordering::SeqCst);
                Ok(Arc::new(ChaosConnection::with_fault_rate(
                    Arc::new(InMemoryConnection::new(d.clone())),
                    seed + n,
                    0.35,
                )) as Arc<dyn Connection>)
            });
            let pool = Arc::new(
                ConnectionPool::builder(vec!["127.0.0.1:1".parse().unwrap()])
                    .with_slots(1)
                    .with_connector(connector)
                    .with_retry_budget(Arc::new(RetryBudget::new(2, 4)))
                    .build()
                    .unwrap(),
            );
            let base = CallOptions::new()
                .with_deadline(Duration::from_millis(50))
                .with_retry(retry_policy());
            let critical =
                RemoteRef::new(pool.clone(), b"obj".to_vec(), ops.clone(), Endian::Little)
                    .with_options(base.clone());
            let shed = RemoteRef::new(pool.clone(), b"obj".to_vec(), ops, Endian::Little)
                .with_options(base.sheddable());
            let outcomes: Vec<String> = (0..40)
                .map(|k| {
                    let remote = if k % 2 == 0 { &critical } else { &shed };
                    match remote.invoke("echo", &payload(k)) {
                        Ok(v) => format!("ok:{v:?}"),
                        Err(RuntimeError::RetryBudgetExhausted(m)) => format!("budget:{m}"),
                        Err(RuntimeError::Transport(m)) => format!("transport:{m}"),
                        Err(e) => format!("other:{e}"),
                    }
                })
                .collect();
            (outcomes, pool.metrics().snapshot().retry_budget_exhausted)
        };
        let (o1, x1) = run();
        let (o2, x2) = run();
        assert_eq!(o1, o2, "outcomes diverged; reproduce with seed={seed}");
        assert_eq!(
            x1, x2,
            "budget refusals diverged; reproduce with seed={seed}"
        );
    }
}
