//! The collaboration framework study (paper §5, E3): messaging stubs.
//!
//! "Our colleagues declared the 21 message types they needed as Java
//! classes ... Mockingbird generated custom 'send' and 'receive' stubs
//! for these messages ... This project illustrates that Mockingbird is
//! useful even for distributed programming within a single language,
//! and that it supports messaging as well as remote invocation
//! gracefully."
//!
//! Two "sites" exchange collaboration messages over TCP as oneway GIOP
//! requests; each message type's Mtype drives its CDR encoding.
//!
//! Run with: `cargo run --example collaboration`

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mockingbird::corpus::collab::{collaboration, MESSAGE_TYPES};
use mockingbird::runtime::{Node, RemoteRef, TcpServer, WireOp};
use mockingbird::stubgen::MessagingStubs;
use mockingbird::values::{Endian, MValue};
use mockingbird::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load the 21 message types + 22 application classes.
    let corpus = collaboration();
    let mut session = Session::new();
    for decl in corpus.java.iter() {
        session.universe_mut().insert(decl.clone()).unwrap();
    }
    session.annotate(&corpus.script)?;
    println!(
        "loaded {} declarations ({} message types)",
        session.universe().len(),
        MESSAGE_TYPES.len()
    );

    // Wire types: each message type's Mtype, shared by both sites.
    let mut msg_ops: HashMap<String, WireOp> = HashMap::new();
    for m in MESSAGE_TYPES {
        let ty = session.mtype(m)?;
        msg_ops.insert(
            m.to_string(),
            // result_ty is unused for oneway messages.
            WireOp::new(Arc::new(session.graph().clone()), ty, ty),
        );
    }

    // Site B: receives messages.
    let received: Arc<Mutex<Vec<(String, MValue)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handlers: HashMap<String, Arc<dyn Fn(MValue) + Send + Sync>> = HashMap::new();
    for m in MESSAGE_TYPES {
        let sink = received.clone();
        let name = m.to_string();
        handlers.insert(
            m.to_string(),
            Arc::new(move |v: MValue| sink.lock().unwrap().push((name.clone(), v))),
        );
    }
    let site_b = Node::new("site-b");
    site_b.register_object(
        b"collab".to_vec(),
        MessagingStubs::receive_servant(handlers),
        msg_ops.clone(),
    );
    let mut server = TcpServer::bind("127.0.0.1:0", site_b.dispatcher())?;
    println!("site B listening on {}", server.addr());

    // Site A: sends a burst of updates.
    let conn = Arc::new(mockingbird::runtime::transport::TcpConnection::connect(
        server.addr(),
    )?);
    let remote = RemoteRef::new(conn, b"collab".to_vec(), msg_ops, Endian::Little);

    // Message payloads are sampled straight from each message type's
    // Mtype — the declared Java classes fully determine the shape.
    use mockingbird::corpus::sample_value;
    use mockingbird_rng::StdRng;
    let mut rng = StdRng::seed_from_u64(2026);

    let join_ty = session.mtype("JoinSession")?;
    let join = sample_value(session.graph(), join_ty, &mut rng, 3);
    remote.send("JoinSession", &join)?;

    let cursor_ty = session.mtype("CursorMoved")?;
    let cursor = sample_value(session.graph(), cursor_ty, &mut rng, 3);
    for _ in 0..10 {
        remote.send("CursorMoved", &cursor)?;
    }

    let leave_ty = session.mtype("LeaveSession")?;
    let leave = sample_value(session.graph(), leave_ty, &mut rng, 3);
    remote.send("LeaveSession", &leave)?;

    // Oneway sends race the assertions; wait for delivery.
    for _ in 0..100 {
        if received.lock().unwrap().len() >= 12 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let log = received.lock().unwrap();
    println!("\nsite B received {} messages:", log.len());
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for (name, _) in log.iter() {
        *counts.entry(name.as_str()).or_default() += 1;
    }
    let mut counts: Vec<_> = counts.into_iter().collect();
    counts.sort();
    for (name, n) in counts {
        println!("  {name:<16} × {n}");
    }
    assert_eq!(log.len(), 12);
    println!("\nreplicated-object updates flowed as declared Java classes — no IDL anywhere.");

    drop(log);
    server.shutdown();
    Ok(())
}
