//! Quickstart: the paper's fitter example (Figs. 1–5, §2–§3.4),
//! end to end.
//!
//! A Java graphical application (Point/Line/PointVector, Fig. 1) wants
//! to call the C `fitter` function (Fig. 2). We load both declarations
//! as written, apply the §3.4 annotations, let the Comparer prove the
//! two interfaces isomorphic, and run a *real* call: the Java side
//! builds an object graph in a Java heap, the stub converts it, the C
//! side works on a genuine memory image (alignment, pointers and all),
//! and a Java `Line` comes back.
//!
//! Run with: `cargo run --example quickstart`

use mockingbird::stype::ast::Stype;
use mockingbird::values::{CCodec, CMemory, CTarget, JCodec, JHeap, JValue, MValue, ReadContext};
use mockingbird::{Mode, Session};

const FIG2_C: &str = "typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);";

const FIG1_5_JAVA: &str = "
public class Point {
    public Point(float x, float y) { this.x = x; this.y = y; }
    public float getX() { return x; }
    public float getY() { return y; }
    private float x;
    private float y;
}
public class Line {
    public Line(Point s, Point e) { start = s; end = e; }
    private Point start;
    private Point end;
}
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }";

const ANNOTATIONS: &str = "
annotate fitter.param(pts) length=param(count)
annotate fitter.param(start) direction=out
annotate fitter.param(end) direction=out
annotate Line.field(start) non-null no-alias
annotate Line.field(end) non-null no-alias
annotate PointVector element=Point non-null
annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();

    println!("== Loading declarations (Fig. 1, Fig. 2, Fig. 5) ==");
    session.load_c(FIG2_C)?;
    session.load_java(FIG1_5_JAVA)?;

    println!("\n== Before annotation, the Comparer rejects the pair ==");
    match session.compare("JavaIdeal", "fitter", Mode::Equivalence) {
        Err(e) => println!("{e}\n"),
        Ok(_) => unreachable!("nullable fields cannot match yet"),
    }

    println!("== Applying the Section 3.4 annotations ==");
    let applied = session.annotate(ANNOTATIONS)?;
    println!("{applied} annotation statements applied\n");

    println!("== The Mtypes now agree (paper Section 3.4) ==");
    println!("C fitter:  {}", session.display_mtype("fitter")?);
    println!("JavaIdeal: {}\n", session.display_mtype("JavaIdeal")?);

    let stub = session.function_stub("JavaIdeal", "fitter")?;
    println!(
        "== Stub generated ({} matched node pairs) ==\n",
        stub.plan().len()
    );

    // ---- The Java side: a real object graph. ----------------------------
    let mut heap = JHeap::new();
    let jcodec = JCodec::new(session.universe());
    let points: Vec<JValue> = (0..5)
        .map(|k| {
            heap.instance(
                "Point",
                vec![JValue::Float(k as f32), JValue::Float(2.0 * k as f32 + 0.5)],
            )
        })
        .collect();
    let pv = heap.vector(points);
    let pts_m = jcodec.to_mvalue(&heap, &Stype::named("PointVector"), &pv)?;
    println!("Java PointVector as a neutral value: {pts_m}");

    // ---- The C side: a real fitter over a real memory image. ------------
    let uni_snapshot = session.universe().clone();
    let c_fitter = move |args: MValue| -> Result<MValue, String> {
        let codec = CCodec::new(&uni_snapshot, CTarget::LP64_LE);
        let mut mem = CMemory::new(CTarget::LP64_LE);
        let MValue::Record(items) = &args else {
            return Err("bad frame".into());
        };
        // Write the point array into C memory (float[2] elements).
        let pts_ty = Stype::array_indefinite(Stype::named("point"));
        let MValue::List(pts) = &items[0] else {
            return Err("bad pts".into());
        };
        let elem_size = 8; // float[2]
        let base = mem.alloc(elem_size * pts.len().max(1), 4);
        for (i, p) in pts.iter().enumerate() {
            codec
                .write_at(
                    &mut mem,
                    &Stype::named("point"),
                    base + (i * elem_size) as u64,
                    p,
                )
                .map_err(|e| e.to_string())?;
        }
        let _ = pts_ty;
        // A least-squares line fit over the points in memory.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..pts.len() {
            let v = codec
                .read_at(
                    &mem,
                    &Stype::named("point"),
                    base + (i * elem_size) as u64,
                    &ReadContext::default(),
                )
                .map_err(|e| e.to_string())?;
            let MValue::Record(xy) = v else {
                return Err("bad point".into());
            };
            let (MValue::Real(x), MValue::Real(y)) = (&xy[0], &xy[1]) else {
                return Err("bad coords".into());
            };
            xs.push(*x);
            ys.push(*y);
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let sxx: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let intercept = mean_y - slope * mean_x;
        let x0 = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let x1 = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Deposit the out-parameters as point values (f32 precision, as
        // the C type dictates).
        let start = MValue::Record(vec![
            MValue::Real((x0 as f32) as f64),
            MValue::Real(((slope * x0 + intercept) as f32) as f64),
        ]);
        let end = MValue::Record(vec![
            MValue::Real((x1 as f32) as f64),
            MValue::Real(((slope * x1 + intercept) as f32) as f64),
        ]);
        Ok(MValue::Record(vec![start, end]))
    };

    // ---- The adapted call. -----------------------------------------------
    let out = stub.call(&[pts_m], &c_fitter).map_err(|e| e.to_string())?;
    println!("Stub returned (Java shape): {out}");

    // Materialise the Java Line object.
    let MValue::Record(line_rec) = &out else {
        unreachable!()
    };
    let line_obj = jcodec.from_mvalue(&mut heap, &Stype::named("Line"), &line_rec[0])?;
    println!(
        "Java Line object materialised: {:?}",
        heap.get(match line_obj {
            JValue::Ref(r) => r,
            _ => unreachable!(),
        })
    );

    println!("\nThe fitted line runs from (0, 0.5) to (4, 8.5) — no imposed types anywhere.");
    Ok(())
}
