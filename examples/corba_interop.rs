//! CORBA interoperation (paper §2, Figs. 3–4) and a real remote call.
//!
//! One declaration may be CORBA IDL, "enabling interoperation with
//! remote IDL-based non-Mockingbird components while still conferring
//! the benefits of Mockingbird locally" (§1). This example:
//!
//! 1. parses both Fig. 3 IDL interfaces (CFriendly and JavaFriendly);
//! 2. shows the *imposed* Java types a traditional IDL compiler emits
//!    (Fig. 4) and what an X2Y tool would impose;
//! 3. proves the native C `fitter` and the native `JavaIdeal` both match
//!    the IDL interface via Mtypes;
//! 4. runs a remote invocation over TCP with GIOP framing and CDR
//!    marshalling: a Java-declared client calls a C-declared server.
//!
//! Run with: `cargo run --example corba_interop`

use std::collections::HashMap;
use std::sync::Arc;

use mockingbird::baselines::{c_to_java, generate_java};
use mockingbird::runtime::{RemoteRef, Servant, TcpServer};
use mockingbird::stubgen::RemoteStub;
use mockingbird::values::{Endian, MValue};
use mockingbird::{Mode, Session};

const FIG3B_IDL: &str = "
interface CFriendly {
  typedef float Point[2];
  typedef sequence<Point> pointseq;
  void fitter(in pointseq pts, in long count,
              out Point start, out Point end);
};";

const FIG3A_IDL: &str = "
interface JavaFriendly {
  struct Point { float x; float y; };
  struct Line { Point start; Point end; };
  typedef sequence<Point> PointVector;
  Line fitter(in PointVector pts);
};";

const FIG2_C: &str = "typedef float cpoint[2];
void fitter(cpoint pts[], int count, cpoint *start, cpoint *end);";

const JAVA: &str = "
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }";

const SCRIPT: &str = "
annotate fitter.param(pts) length=param(count)
annotate fitter.param(start) direction=out
annotate fitter.param(end) direction=out
annotate Line.field(start) non-null no-alias
annotate Line.field(end) non-null no-alias
annotate PointVector element=Point non-null
annotate JavaIdeal.method(fitter).param(pts) non-null
annotate JavaIdeal.method(fitter).ret non-null
annotate CFriendly.method(fitter).param(pts) length=param(count)";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();
    s.load_idl(FIG3B_IDL)?;
    s.load_idl(FIG3A_IDL)?;
    s.load_c(FIG2_C)?;
    s.load_java(JAVA)?;
    s.annotate(SCRIPT)?;

    println!("== What a traditional IDL compiler imposes (Fig. 4) ==");
    for (file, src) in generate_java(s.universe(), "JavaFriendly.Point") {
        println!("--- {file} ---\n{src}");
    }
    for (file, src) in generate_java(s.universe(), "CFriendly") {
        println!("--- {file} ---\n{src}");
    }

    println!("== What an X2Y tool imposes ==");
    println!("{}", c_to_java(s.universe(), "fitter").unwrap());

    println!("== Mockingbird instead matches the declarations you already have ==");
    for (left, right) in [
        ("JavaIdeal", "CFriendly"),
        ("fitter", "CFriendly"),
        ("JavaIdeal", "JavaFriendly"),
        ("JavaIdeal", "fitter"),
    ] {
        let plan = s.compare(left, right, Mode::Equivalence)?;
        println!("  {left:<10} ≅ {right:<12} ({} matched pairs)", plan.len());
    }

    // ---- Remote invocation: Java client -> TCP/GIOP/CDR -> C server. ----
    println!("\n== Remote call over TCP (GIOP framing, CDR marshalling) ==");
    // The wire shape is the C declaration (the server's native form).
    let wire_op = s.wire_op("fitter")?;

    // Server: the C fitter as a servant.
    let servant: Arc<dyn Servant> = Arc::new(|_op: &str, args: MValue| {
        let MValue::Record(items) = &args else {
            return Err(mockingbird::runtime::RuntimeError::Conversion(
                "bad args".into(),
            ));
        };
        let MValue::List(pts) = &items[0] else {
            return Err(mockingbird::runtime::RuntimeError::Conversion(
                "bad pts".into(),
            ));
        };
        let first = pts
            .first()
            .cloned()
            .unwrap_or(MValue::Record(vec![MValue::Real(0.0), MValue::Real(0.0)]));
        let last = pts.last().cloned().unwrap_or_else(|| first.clone());
        Ok(MValue::Record(vec![first, last]))
    });
    let node = mockingbird::runtime::Node::new("c-server");
    let mut ops = HashMap::new();
    ops.insert("fitter".to_string(), wire_op.clone());
    node.register_object(b"fitter-service".to_vec(), servant, ops);
    let mut server = TcpServer::bind("127.0.0.1:0", node.dispatcher())?;
    println!("server listening on {}", server.addr());

    // Client: JavaIdeal-declared, adapted by the coercion plan.
    let plan = s.compare("JavaIdeal", "fitter", Mode::Equivalence)?;
    let stub = mockingbird::stubgen::FunctionStub::new(Arc::new(plan))?;
    let conn = Arc::new(mockingbird::runtime::transport::TcpConnection::connect(
        server.addr(),
    )?);
    let mut client_ops = HashMap::new();
    client_ops.insert("fitter".to_string(), wire_op);
    let remote = Arc::new(RemoteRef::new(
        conn,
        b"fitter-service".to_vec(),
        client_ops,
        Endian::Little,
    ));
    let remote_stub = RemoteStub::new(stub, remote, "fitter");

    let pts = MValue::List(vec![
        MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]),
        MValue::Record(vec![MValue::Real(3.0), MValue::Real(4.0)]),
        MValue::Record(vec![MValue::Real(5.0), MValue::Real(6.0)]),
    ]);
    let line = remote_stub.call(&[pts]).map_err(|e| e.to_string())?;
    println!("remote fitter returned (Java shape): {line}");

    server.shutdown();
    Ok(())
}
