//! The VisualAge study (paper §5, E1): scripted annotation at scale.
//!
//! "Mockingbird was first used to build a miniature version of the
//! system with twelve carefully chosen classes ... We have developed a
//! scripting technique that allows annotations, worked out in detail
//! with representative classes, to be applied in batch mode to a much
//! larger set."
//!
//! This example runs the 12-class miniature, then scales the same batch
//! pipeline up and reports comparison throughput (the paper's open
//! scalability question, measured).
//!
//! Run with: `cargo run --release --example visualage_bridge`

use std::time::Instant;

use mockingbird::comparer::{Comparer, Mode};
use mockingbird::corpus::visualage;
use mockingbird::mtype::MtypeGraph;
use mockingbird::stype::lower::Lowerer;
use mockingbird::stype::script::apply_script;

fn run_scale(n_classes: usize, seed: u64) -> (usize, usize, f64, f64) {
    let mut pair = visualage(n_classes, seed);
    let script_lines = pair
        .script
        .lines()
        .filter(|l| l.starts_with("annotate"))
        .count();
    apply_script(&mut pair.java, &pair.script).expect("batch script applies");

    let t0 = Instant::now();
    let mut g = MtypeGraph::new();
    let mut cxx_ids = Vec::new();
    let mut java_ids = Vec::new();
    {
        let mut lw = Lowerer::new(&pair.cxx, &mut g);
        for name in &pair.class_names {
            cxx_ids.push(lw.lower_named(name).unwrap());
        }
    }
    {
        let mut lw = Lowerer::new(&pair.java, &mut g);
        for name in &pair.class_names {
            java_ids.push(lw.lower_named(name).unwrap());
        }
    }
    let lower_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut matched = 0;
    let cmp = Comparer::new(&g, &g);
    for (c, j) in cxx_ids.iter().zip(&java_ids) {
        if cmp.compare(*c, *j, Mode::Equivalence).is_ok() {
            matched += 1;
        }
    }
    let compare_secs = t1.elapsed().as_secs_f64();
    (matched, script_lines, lower_secs, compare_secs)
}

fn main() {
    println!("== E1: the 12-class miniature ==");
    let (matched, lines, lower_s, cmp_s) = run_scale(12, 42);
    println!(
        "12 classes: {matched}/12 matched after {lines} scripted annotations \
         (lowering {lower_s:.4}s, comparing {cmp_s:.4}s)\n"
    );
    assert_eq!(matched, 12);

    println!("== Scaling the batch pipeline (the paper's open question) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14}",
        "classes", "matched", "annotate", "lower (s)", "compare (s)"
    );
    for n in [12, 50, 100, 250, 500] {
        let (matched, lines, lower_s, cmp_s) = run_scale(n, 42);
        println!("{n:>8} {matched:>10} {lines:>12} {lower_s:>12.4} {cmp_s:>14.4}");
        assert_eq!(matched, n, "every class matches at every scale");
    }
    println!("\nComparison cost grows near-linearly in the corpus: the miniature's");
    println!("annotations, applied in batch, carry to the full 500-class system.");
}
